/**
 * @file
 * Tests for the conservative parallel cluster engine and its
 * supporting layers: the EventQueue horizon fast path, the WorkerPool
 * bulk-submit path, CrossLink ordering/latency properties, and the
 * headline determinism contract — a cluster run is byte-identical for
 * any worker count, including under fault injection, with errors from
 * driver threads contained and rethrown.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "io/cross_link.h"
#include "io/virtio_net.h"
#include "sim/event_queue.h"
#include "sim/fault.h"
#include "sim/log.h"
#include "sim/worker_pool.h"
#include "system/cluster.h"
#include "system/nested_system.h"
#include "workloads/remote_peer.h"

namespace svtsim {
namespace {

// ---------------------------------------------------------------------
// EventQueue::runUntilTick (the cluster window drain fast path).

TEST(RunUntilTick, FiresStrictlyBelowLimitOnly)
{
    EventQueue q;
    std::vector<int> fired;
    q.schedule(10, [&] { fired.push_back(1); });
    q.schedule(99, [&] { fired.push_back(2); });
    q.schedule(100, [&] { fired.push_back(3); });
    q.schedule(150, [&] { fired.push_back(4); });

    EXPECT_EQ(q.runUntilTick(100), 2u);
    EXPECT_EQ(fired, (std::vector<int>{1, 2}));
    // The clock stays at the last fired event, not at the limit.
    EXPECT_EQ(q.now(), 99);

    EXPECT_EQ(q.runUntilTick(1000), 2u);
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_EQ(q.now(), 150);
}

TEST(RunUntilTick, EventsScheduledDuringDrainRun)
{
    EventQueue q;
    int count = 0;
    // A chain that re-schedules itself inside the window.
    std::function<void()> chain = [&] {
        ++count;
        if (count < 5)
            q.scheduleIn(10, [&] { chain(); });
    };
    q.schedule(10, [&] { chain(); });
    q.runUntilTick(100);
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.now(), 50);
}

TEST(RunUntilTick, EmptyWindowIsANoOp)
{
    EventQueue q;
    q.schedule(500, [] {});
    EXPECT_EQ(q.runUntilTick(100), 0u);
    EXPECT_EQ(q.now(), 0);
    EXPECT_EQ(q.nextEventTime(), 500);
}

// ---------------------------------------------------------------------
// WorkerPool::runTasks (the zero-alloc epoch submit path).

TEST(WorkerPoolRunTasks, RunsEveryBorrowedSlotAndIsReusable)
{
    WorkerPool pool(3);
    std::atomic<int> counter{0};
    std::vector<std::function<void()>> slots;
    for (int i = 0; i < 8; ++i)
        slots.push_back([&counter] { ++counter; });
    std::vector<std::function<void()> *> ptrs;
    for (auto &s : slots)
        ptrs.push_back(&s);

    pool.runTasks(ptrs.data(), ptrs.size());
    EXPECT_EQ(counter.load(), 8);
    // Slots are reusable across windows without re-allocation.
    pool.runTasks(ptrs.data(), ptrs.size());
    EXPECT_EQ(counter.load(), 16);
    // Empty bulk submit returns immediately.
    pool.runTasks(ptrs.data(), 0);
    EXPECT_EQ(counter.load(), 16);
}

TEST(WorkerPoolRunTasks, MixesWithSubmit)
{
    WorkerPool pool(2);
    std::atomic<int> counter{0};
    pool.submit([&counter] { ++counter; });
    std::function<void()> task = [&counter] { counter += 10; };
    std::function<void()> *ptr = &task;
    pool.runTasks(&ptr, 1);
    pool.wait();
    EXPECT_EQ(counter.load(), 11);
}

// ---------------------------------------------------------------------
// CrossLink wire properties.

TEST(CrossLink, DeliveryRespectsSerializationPlusLatency)
{
    NestedSystem sysA(VirtMode::Native);
    NestedSystem sysB(VirtMode::Native);
    const Ticks latency = usec(5);
    const double rate = 10e9;
    CrossLink link(sysA.machine(), 0, sysB.machine(), 1, latency,
                   rate);

    std::vector<Ticks> arrivals;
    std::vector<std::uint64_t> ids;
    link.port(1).setReceiveHandler([&](NetPacket pkt) {
        arrivals.push_back(sysB.machine().now());
        ids.push_back(pkt.id);
    });

    const std::uint32_t bytes = 1000;
    const Ticks ser = link.port(0).serialization(bytes);
    ASSERT_GT(ser, 0);
    // Two back-to-back sends: the second queues behind the first's
    // serialization (the wire is busy), both cross the latency.
    link.port(0).send(NetPacket{1, bytes, 0});
    link.port(0).send(NetPacket{2, bytes, 0});
    EXPECT_EQ(link.stagedCount(), 2u);

    link.deliverStaged();
    sysB.machine().events().runUntilTick(maxTick);

    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 2}));
    EXPECT_EQ(arrivals[0], ser + latency);
    EXPECT_EQ(arrivals[1], 2 * ser + latency);
}

TEST(CrossLink, FifoPerDirectionUnderRandomSends)
{
    NestedSystem sysA(VirtMode::Native, {}, 11);
    NestedSystem sysB(VirtMode::Native, {}, 12);
    CrossLink link(sysA.machine(), 0, sysB.machine(), 1, usec(3),
                   10e9);

    std::vector<std::uint64_t> got;
    std::vector<Ticks> when;
    link.port(1).setReceiveHandler([&](NetPacket pkt) {
        got.push_back(pkt.id);
        when.push_back(sysB.machine().now());
    });

    Rng rng(99);
    std::uint64_t id = 0;
    for (int round = 0; round < 20; ++round) {
        // Source machine advances between bursts; sizes vary, so
        // serialization times differ per packet.
        sysA.machine().events().scheduleIn(
            nsec(50 + static_cast<Ticks>(rng.below(2000))), [] {});
        sysA.machine().events().runUntilTick(maxTick);
        int burst = 1 + static_cast<int>(rng.below(4));
        for (int i = 0; i < burst; ++i)
            link.port(0).send(NetPacket{
                id++,
                64 + static_cast<std::uint32_t>(rng.below(9000)), 0});
    }
    link.deliverStaged();
    sysB.machine().events().runUntilTick(maxTick);

    ASSERT_EQ(got.size(), id);
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], i); // FIFO: ids in send order
    for (std::size_t i = 1; i < when.size(); ++i)
        EXPECT_LE(when[i - 1], when[i]); // arrivals monotone
}

TEST(CrossLink, CanonicalMergeOrdersAcrossLinks)
{
    NestedSystem hub(VirtMode::Native);
    NestedSystem peer1(VirtMode::Native);
    NestedSystem peer2(VirtMode::Native);
    // Same latency/rate: equal-size packets from both peers collide
    // on the same arrival tick, forcing the src-id tie break.
    CrossLink l1(peer1.machine(), 1, hub.machine(), 0, usec(2), 10e9);
    CrossLink l2(peer2.machine(), 2, hub.machine(), 0, usec(2), 10e9);

    std::vector<std::pair<Ticks, std::uint64_t>> seen;
    auto handler = [&](NetPacket pkt) {
        seen.emplace_back(hub.machine().now(), pkt.id);
    };
    l1.port(1).setReceiveHandler(handler);
    l2.port(1).setReceiveHandler(handler);

    l2.port(0).send(NetPacket{20, 500, 0});
    l1.port(0).send(NetPacket{10, 500, 0});

    std::vector<CrossLink::Delivery> staged;
    l1.drainStaged(staged);
    l2.drainStaged(staged);
    std::stable_sort(staged.begin(), staged.end(),
                     CrossLink::canonicalLess);
    ASSERT_EQ(staged.size(), 2u);
    // Identical arrival tick: the lower src machine id delivers first.
    EXPECT_EQ(staged[0].arrival, staged[1].arrival);
    EXPECT_EQ(staged[0].srcId, 1);
    EXPECT_EQ(staged[1].srcId, 2);
    for (const auto &d : staged)
        d.link->deliver(d);
    hub.machine().events().runUntilTick(maxTick);
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0].second, 10u);
    EXPECT_EQ(seen[1].second, 20u);
}

TEST(CrossLink, IntegerSerializationMatchesExactRate)
{
    // (bytes + framing) * 8 bits at 10 GbE: exact picosecond math,
    // no double rounding (platform determinism).
    EXPECT_EQ(netlink::serializationTicks(1000, 10'000'000'000LL),
              Ticks{(1000 + 78) * 8 * 100});
    EXPECT_EQ(netlink::serializationTicks(0, 10'000'000'000LL),
              Ticks{78 * 8 * 100});
    EXPECT_EQ(netlink::serializationTicks(1522, 40'000'000'000LL),
              Ticks{(1522 + 78) * 8 * 25});
}

// ---------------------------------------------------------------------
// Cluster engine: determinism across worker counts.

/** A three-machine raw ping-pong: one driver machine round-robins
 *  requests to two echo peers over links of *different* latencies, so
 *  epochs interleave staged traffic from both. Returns a fingerprint
 *  covering clocks, counters and epoch statistics. */
std::string
pingPongFingerprint(int jobs, const std::string &faults = "")
{
    Cluster cluster(17);
    int a = cluster.addMachine("driver", VirtMode::Native);
    int b = cluster.addMachine("echo1", VirtMode::Native);
    int c = cluster.addMachine("echo2", VirtMode::Native);
    CrossLink &l1 = cluster.connect(a, b, usec(3), 10e9);
    CrossLink &l2 = cluster.connect(a, c, usec(7), 10e9);

    NetserverPeer p1(cluster.machine(b), l1.port(1));
    NetserverPeer p2(cluster.machine(c), l2.port(1));

    if (!faults.empty())
        cluster.installFaultPlan(FaultPlan::parse(faults));

    std::uint64_t got1 = 0, got2 = 0;
    l1.port(0).setReceiveHandler([&](NetPacket) { ++got1; });
    l2.port(0).setReceiveHandler([&](NetPacket) { ++got2; });

    cluster.setDriver(a, [&](NestedSystem &sys) {
        Machine &m = sys.machine();
        for (int round = 0; round < 25; ++round) {
            std::uint64_t want1 = got1 + 1, want2 = got2 + 1;
            l1.port(0).send(NetPacket{
                static_cast<std::uint64_t>(round), 200,
                peerwire::rrRequest(100)});
            l2.port(0).send(NetPacket{
                static_cast<std::uint64_t>(round), 900,
                peerwire::rrRequest(60)});
            while (got1 < want1 || got2 < want2)
                m.idleUntil(m.now() + usec(50));
        }
    });

    ClusterStats stats = cluster.run(jobs);

    std::ostringstream fp;
    fp << got1 << ":" << got2 << " epochs=" << stats.epochs
       << " steps=" << stats.steps << " merged=" << stats.merged;
    for (int i = 0; i < cluster.size(); ++i)
        fp << " t" << i << "=" << cluster.machine(i).now();
    fp << " d1=" << l1.delivered(0) << "," << l1.delivered(1)
       << " d2=" << l2.delivered(0) << "," << l2.delivered(1);
    return fp.str();
}

TEST(Cluster, PingPongByteIdenticalAcrossWorkerCounts)
{
    const std::string seq = pingPongFingerprint(1);
    EXPECT_NE(seq.find("epochs="), std::string::npos);
    EXPECT_EQ(seq, pingPongFingerprint(2));
    EXPECT_EQ(seq, pingPongFingerprint(3));
    EXPECT_EQ(seq, pingPongFingerprint(8));
}

TEST(Cluster, FaultInjectionStaysDeterministicThroughClusterPath)
{
    const std::string spec =
        "virtio.completion.delay@p0.3,d40us;ipi.delay@p0.1,d3us";
    const std::string seq = pingPongFingerprint(1, spec);
    EXPECT_EQ(seq, pingPongFingerprint(3, spec));
    // The injected delays must actually change the simulation.
    EXPECT_NE(seq, pingPongFingerprint(1));
}

/** The full nested stack through the cluster: a virtualized client
 *  machine running netperf RR against a bare-metal NetserverPeer. */
std::string
nestedRrFingerprint(int jobs, VirtMode mode)
{
    Cluster cluster(5);
    int c = cluster.addMachine("client", mode);
    int p = cluster.addMachine("peer", VirtMode::Native);
    CrossLink &link = cluster.connect(
        c, p, cluster.machine(c).costs().wireLatency,
        cluster.machine(c).costs().linkBitsPerSec);

    VirtioNetStack net(cluster.system(c).stack(), link.port(0));
    NetserverPeer peer(cluster.machine(p), link.port(1));
    ClusterNetperf netperf(cluster.system(c).stack(), net);

    NetperfRrResult rr;
    cluster.setDriver(c, [&](NestedSystem &) {
        rr = netperf.runRr(1, 1, 15);
    });
    ClusterStats stats = cluster.run(jobs);

    std::ostringstream fp;
    fp.precision(17);
    fp << rr.meanUsec << "/" << rr.p99Usec << "/" << rr.transactions
       << " epochs=" << stats.epochs << " merged=" << stats.merged
       << " t0=" << cluster.machine(0).now()
       << " t1=" << cluster.machine(1).now();
    return fp.str();
}

TEST(Cluster, NestedStackRrIdenticalAcrossWorkerCounts)
{
    for (VirtMode mode : {VirtMode::Nested, VirtMode::SwSvt}) {
        const std::string seq = nestedRrFingerprint(1, mode);
        EXPECT_EQ(seq, nestedRrFingerprint(2, mode)) << "mode "
            << virtModeName(mode);
    }
}

TEST(Cluster, FollowerOnlyClusterDrainsAndTerminates)
{
    // No drivers at all: machines just run their queued events; the
    // run ends when every queue is empty.
    Cluster cluster(3);
    int a = cluster.addMachine("a", VirtMode::Native);
    int b = cluster.addMachine("b", VirtMode::Native);
    CrossLink &link = cluster.connect(a, b, usec(1), 10e9);

    std::uint64_t got = 0;
    link.port(1).setReceiveHandler([&](NetPacket) { ++got; });
    cluster.machine(a).events().schedule(usec(10), [&] {
        link.port(0).send(NetPacket{1, 100, 0});
    });
    cluster.machine(b).events().schedule(usec(2), [] {});

    ClusterStats stats = cluster.run(2);
    EXPECT_EQ(got, 1u);
    EXPECT_GE(stats.merged, 1u);
    EXPECT_GT(cluster.machine(b).now(), usec(10));
}

TEST(Cluster, DriverErrorIsContainedAndRethrown)
{
    Cluster cluster(1);
    int a = cluster.addMachine("boom", VirtMode::Native);
    int b = cluster.addMachine("quiet", VirtMode::Native);
    cluster.connect(a, b, usec(1), 10e9);
    cluster.setDriver(a, [](NestedSystem &sys) {
        sys.machine().idleUntil(usec(5));
        throw SimError("deliberate driver failure");
    });
    cluster.setDriver(b, [](NestedSystem &sys) {
        sys.machine().idleUntil(msec(1));
    });
    EXPECT_THROW(
        {
            try {
                cluster.run(2);
            } catch (const SimError &e) {
                EXPECT_NE(std::string(e.what())
                              .find("deliberate driver failure"),
                          std::string::npos);
                throw;
            }
        },
        SimError);
}

TEST(Cluster, RunIsOnceOnly)
{
    Cluster cluster(1);
    cluster.addMachine("solo", VirtMode::Native);
    cluster.run(1);
    EXPECT_THROW(cluster.run(1), PanicError);
}

} // namespace
} // namespace svtsim
