/**
 * @file
 * Tests for the hypervisor stack: mode construction, the nested trap
 * flow (Algorithm 1), transparency across modes, SVt speedups, the
 * SW SVt channel protocol and the Section 5.3 deadlock.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hv/channel.h"
#include "hv/cpuid_db.h"
#include "hv/vectors.h"
#include "hv/virt_stack.h"
#include "sim/log.h"

namespace svtsim {
namespace {

/** Machine with enough SMT width for the requested mode. */
MachineTopology
topoFor(VirtMode mode)
{
    MachineTopology t;
    t.numaNodes = 1;
    t.coresPerNode = 2;
    t.threadsPerCore = (mode == VirtMode::HwSvt) ? 3 : 2;
    return t;
}

struct Rig
{
    explicit Rig(VirtMode mode, bool shadowing = true,
                 bool blocked_fix = true)
        : machine(topoFor(mode))
    {
        StackConfig cfg;
        cfg.mode = mode;
        cfg.hwVmcsShadowing = shadowing;
        cfg.svtBlockedFix = blocked_fix;
        stack = std::make_unique<VirtStack>(machine, cfg);
    }

    Machine machine;
    std::unique_ptr<VirtStack> stack;
};

/** Simulated time consumed by one invocation of @p fn. */
template <typename F>
Ticks
timeOf(Machine &machine, F &&fn)
{
    Ticks t0 = machine.now();
    fn();
    return machine.now() - t0;
}

// ----------------------------------------------------------- construction

TEST(VirtStack, ConstructsInAllModes)
{
    for (VirtMode mode :
         {VirtMode::Native, VirtMode::Single, VirtMode::Nested,
          VirtMode::SwSvt, VirtMode::HwSvt}) {
        Rig rig(mode);
        EXPECT_EQ(rig.stack->config().mode, mode);
        EXPECT_EQ(rig.stack->api().level(),
                  mode == VirtMode::Native  ? 0
                  : mode == VirtMode::Single ? 1
                                             : 2);
    }
}

TEST(VirtStack, HwSvtMultiplexesOnTwoContexts)
{
    // Section 3.1: past the context capacity, the hypervisor
    // multiplexes levels on a shared context.
    Machine machine(MachineTopology{1, 1, 2});
    StackConfig cfg;
    cfg.mode = VirtMode::HwSvt;
    VirtStack stack(machine, cfg);
    auto r = stack.api().cpuid(1);
    EXPECT_TRUE(r.ecx & cpuid_feature::hypervisorPresent);
    EXPECT_GT(machine.counter("svt.ctx_multiplex"), 0u);
}

TEST(VirtStack, HwSvtMultiplexedMatchesDedicatedResults)
{
    Machine m2(MachineTopology{1, 1, 2});
    Machine m3(MachineTopology{1, 1, 3});
    StackConfig cfg;
    cfg.mode = VirtMode::HwSvt;
    VirtStack mux(m2, cfg);
    VirtStack dedicated(m3, cfg);
    for (std::uint64_t leaf : {0ULL, 1ULL, 0x16ULL}) {
        EXPECT_EQ(mux.api().cpuid(leaf), dedicated.api().cpuid(leaf));
    }
    mux.api().wrmsr(msr::ia32Lstar, 0x1234);
    dedicated.api().wrmsr(msr::ia32Lstar, 0x1234);
    EXPECT_EQ(mux.api().rdmsr(msr::ia32Lstar),
              dedicated.api().rdmsr(msr::ia32Lstar));
    // The multiplexed variant is slower but still beats the baseline.
    Machine mb(MachineTopology{1, 1, 2});
    StackConfig cb;
    cb.mode = VirtMode::Nested;
    VirtStack base(mb, cb);
    base.api().cpuid(1);
    mux.api().cpuid(1);
    Ticks tb0 = mb.now();
    base.api().cpuid(1);
    Ticks tb = mb.now() - tb0;
    Ticks tm0 = m2.now();
    mux.api().cpuid(1);
    Ticks tm = m2.now() - tm0;
    EXPECT_LT(tm, tb);
}

TEST(VirtStack, HwSvtOneContextRejected)
{
    Machine machine(MachineTopology{1, 1, 1});
    StackConfig cfg;
    cfg.mode = VirtMode::HwSvt;
    EXPECT_THROW(VirtStack(machine, cfg), FatalError);
}

TEST(VirtStack, DirectReflectNeedsDedicatedContexts)
{
    Machine machine(MachineTopology{1, 1, 2});
    StackConfig cfg;
    cfg.mode = VirtMode::HwSvt;
    cfg.svtDirectReflect = true;
    EXPECT_THROW(VirtStack(machine, cfg), FatalError);
}

TEST(VirtStack, DirectReflectBypassesL0)
{
    Machine machine(MachineTopology{1, 1, 3});
    StackConfig cfg;
    cfg.mode = VirtMode::HwSvt;
    cfg.svtDirectReflect = true;
    VirtStack stack(machine, cfg);
    auto r = stack.api().cpuid(1);
    EXPECT_TRUE(r.ecx & cpuid_feature::hypervisorPresent);
    EXPECT_GT(machine.counter("l0.direct_reflect"), 0u);
    // MMIO exits are not whitelisted: they still go through L0.
    stack.l1Hv().registerMmio(
        0xfe000000, pageSize,
        [](Gpa, int, std::uint64_t, bool) -> std::uint64_t {
            return 0;
        });
    auto direct_before = machine.counter("l0.direct_reflect");
    stack.api().mmioWrite(0xfe000000, 4, 1);
    EXPECT_EQ(machine.counter("l0.direct_reflect"), direct_before);
    EXPECT_GT(machine.counter("l0.reflect"), 0u);
}

TEST(VirtStack, DirectReflectIsFasterThanPlainHwSvt)
{
    auto cpuid_time = [](bool bypass) {
        Machine machine(MachineTopology{1, 1, 3});
        StackConfig cfg;
        cfg.mode = VirtMode::HwSvt;
        cfg.svtDirectReflect = bypass;
        VirtStack stack(machine, cfg);
        stack.api().cpuid(1);
        Ticks t0 = machine.now();
        stack.api().cpuid(1);
        return machine.now() - t0;
    };
    EXPECT_LT(cpuid_time(true), cpuid_time(false) / 3);
}

TEST(VirtStack, HwSvtStartsWithL2Active)
{
    Rig rig(VirtMode::HwSvt);
    EXPECT_EQ(rig.machine.core(0).activeContext(), 2);
    EXPECT_TRUE(rig.stack->svtUnit().enabled());
}

TEST(VirtStack, HwSvtRedirectsExternalInterrupts)
{
    Rig rig(VirtMode::HwSvt);
    // Device interrupts always land on the hypervisor context
    // (Section 3.1), even while L2's context is active.
    rig.stack->raiseHostIrq(0x55);
    EXPECT_TRUE(rig.machine.core(0).lapic(0).isPending(0x55));
    EXPECT_FALSE(rig.machine.core(0).lapic(2).hasPending());
}

// ----------------------------------------------------------------- cpuid

TEST(VirtStack, CpuidValuesFollowTheVirtualizationDepth)
{
    Rig native(VirtMode::Native);
    Rig single(VirtMode::Single);
    Rig nested(VirtMode::Nested);

    auto host = native.stack->api().cpuid(1);
    auto l1 = single.stack->api().cpuid(1);
    auto l2 = nested.stack->api().cpuid(1);

    // Bare metal: no hypervisor bit, VMX available.
    EXPECT_FALSE(host.ecx & cpuid_feature::hypervisorPresent);
    EXPECT_TRUE(host.ecx & cpuid_feature::vmx);
    // L1: under a hypervisor, VMX still exposed (nesting enabled).
    EXPECT_TRUE(l1.ecx & cpuid_feature::hypervisorPresent);
    EXPECT_TRUE(l1.ecx & cpuid_feature::vmx);
    // L2: under a hypervisor, no further nesting offered.
    EXPECT_TRUE(l2.ecx & cpuid_feature::hypervisorPresent);
    EXPECT_FALSE(l2.ecx & cpuid_feature::vmx);
}

TEST(VirtStack, CpuidTransparencyAcrossNestedModes)
{
    // The paper's Section 3.1 requirement: an L2 program observes
    // identical architectural results in the baseline and both SVt
    // variants.
    Rig base(VirtMode::Nested), sw(VirtMode::SwSvt), hw(VirtMode::HwSvt);
    for (std::uint64_t leaf : {0ULL, 1ULL, 0x16ULL, 0x999ULL}) {
        auto a = base.stack->api().cpuid(leaf);
        auto b = sw.stack->api().cpuid(leaf);
        auto c = hw.stack->api().cpuid(leaf);
        EXPECT_EQ(a, b) << "leaf " << leaf;
        EXPECT_EQ(a, c) << "leaf " << leaf;
    }
}

TEST(VirtStack, CpuidLatencyOrderingMatchesFigure6)
{
    Rig native(VirtMode::Native);
    Rig single(VirtMode::Single);
    Rig nested(VirtMode::Nested);
    Rig swsvt(VirtMode::SwSvt);
    Rig hwsvt(VirtMode::HwSvt);

    auto measure = [](Rig &rig) {
        // Warm up once (first EPT faults etc.), then measure.
        rig.stack->api().cpuid(1);
        return timeOf(rig.machine,
                      [&] { rig.stack->api().cpuid(1); });
    };

    Ticks t_native = measure(native);
    Ticks t_single = measure(single);
    Ticks t_nested = measure(nested);
    Ticks t_swsvt = measure(swsvt);
    Ticks t_hwsvt = measure(hwsvt);

    EXPECT_LT(t_native, t_single);
    EXPECT_LT(t_single, t_nested);
    EXPECT_LT(t_swsvt, t_nested);
    EXPECT_LT(t_hwsvt, t_swsvt);
    // Native is the raw instruction cost.
    EXPECT_EQ(t_native, native.machine.costs().cpuidExec);
}

TEST(VirtStack, NestedCpuidLandsOnTable1Total)
{
    // The calibrated cost model must put the full nested cpuid round
    // near the paper's 10.40 us (Table 1).
    Rig rig(VirtMode::Nested);
    rig.stack->api().cpuid(1);
    Ticks t = timeOf(rig.machine, [&] { rig.stack->api().cpuid(1); });
    EXPECT_NEAR(toUsec(t), 10.40, 0.55);
}

TEST(VirtStack, SvtSpeedupsInPaperBands)
{
    Rig nested(VirtMode::Nested), sw(VirtMode::SwSvt),
        hw(VirtMode::HwSvt);
    auto measure = [](Rig &rig) {
        rig.stack->api().cpuid(1);
        return timeOf(rig.machine,
                      [&] { rig.stack->api().cpuid(1); });
    };
    double base = static_cast<double>(measure(nested));
    double sw_speedup = base / static_cast<double>(measure(sw));
    double hw_speedup = base / static_cast<double>(measure(hw));
    // Paper: 1.23x (SW) and 1.94x (HW) on the cpuid microbenchmark.
    EXPECT_NEAR(sw_speedup, 1.23, 0.12);
    EXPECT_NEAR(hw_speedup, 1.94, 0.20);
}

TEST(VirtStack, Table1StagesArePresent)
{
    Rig rig(VirtMode::Nested);
    rig.stack->api().cpuid(1);
    rig.machine.resetAttribution();
    rig.stack->api().cpuid(1);
    const auto &m = rig.machine;
    EXPECT_GT(m.scopeTotal("stage.l2"), 0);
    EXPECT_GT(m.scopeTotal("stage.switch_l2_l0"), 0);
    EXPECT_GT(m.scopeTotal("stage.transform"), 0);
    EXPECT_GT(m.scopeTotal("stage.l0_handler"), 0);
    EXPECT_GT(m.scopeTotal("stage.switch_l0_l1"), 0);
    EXPECT_GT(m.scopeTotal("stage.l1_handler"), 0);
    // Stages partition the round: their sum equals the total time of
    // the exit scope plus the L2 stage.
    Ticks total = m.scopeTotal("exit.CPUID") + m.scopeTotal("stage.l2");
    Ticks stages =
        m.scopeTotal("stage.l2") + m.scopeTotal("stage.switch_l2_l0") +
        m.scopeTotal("stage.transform") +
        m.scopeTotal("stage.l0_handler") +
        m.scopeTotal("stage.switch_l0_l1") +
        m.scopeTotal("stage.l1_handler");
    EXPECT_NEAR(static_cast<double>(stages),
                static_cast<double>(total),
                static_cast<double>(total) * 0.02);
}

TEST(VirtStack, ExitAmplificationFactor)
{
    // Section 1: nested virtualization multiplies trap events by at
    // least 2x; with the folded L1->L0 trap it is 3 full exits here.
    Rig rig(VirtMode::Nested);
    rig.stack->api().cpuid(1);
    rig.machine.resetCounters();
    rig.stack->api().cpuid(1);
    EXPECT_GE(rig.machine.counter("vmx.exit"), 3u);
    EXPECT_EQ(rig.machine.counter("l0.reflect"), 1u);
    // The folded trap is the non-shadowable EntryIntrInfo write.
    EXPECT_EQ(rig.machine.counter("l0.exit.VMWRITE"), 1u);
}

TEST(VirtStack, ShadowingOffAmplifiesTraps)
{
    Rig on(VirtMode::Nested, /*shadowing=*/true);
    Rig off(VirtMode::Nested, /*shadowing=*/false);
    auto measure = [](Rig &rig) {
        rig.stack->api().cpuid(1);
        rig.machine.resetCounters();
        return timeOf(rig.machine,
                      [&] { rig.stack->api().cpuid(1); });
    };
    Ticks t_on = measure(on);
    Ticks t_off = measure(off);
    EXPECT_LT(t_on, t_off);
    // Without shadow VMCS every L1 vmread/vmwrite traps.
    EXPECT_GT(off.machine.counter("l0.exit.VMREAD"),
              on.machine.counter("l0.exit.VMREAD"));
    EXPECT_GT(off.machine.counter("l0.exit.VMWRITE"),
              on.machine.counter("l0.exit.VMWRITE"));
}

// ------------------------------------------------------------------- MSRs

TEST(VirtStack, L2MsrRoundTrip)
{
    for (VirtMode mode :
         {VirtMode::Nested, VirtMode::SwSvt, VirtMode::HwSvt}) {
        Rig rig(mode);
        GuestApi &api = rig.stack->api();
        api.wrmsr(msr::ia32Lstar, 0xfeedface12345678ULL);
        EXPECT_EQ(api.rdmsr(msr::ia32Lstar), 0xfeedface12345678ULL)
            << virtModeName(mode);
    }
}

TEST(VirtStack, L2TscDeadlineDeliversTimerInterrupt)
{
    for (VirtMode mode :
         {VirtMode::Nested, VirtMode::SwSvt, VirtMode::HwSvt}) {
        Rig rig(mode);
        GuestApi &api = rig.stack->api();
        int fired = 0;
        api.setIrqHandler(api.timerVector(), [&] { ++fired; });
        Ticks deadline = rig.machine.now() + usec(150);
        api.wrmsr(msr::ia32TscDeadline,
                  static_cast<std::uint64_t>(deadline));
        int v = api.halt();
        EXPECT_EQ(v, api.timerVector()) << virtModeName(mode);
        EXPECT_EQ(fired, 1) << virtModeName(mode);
        EXPECT_GE(rig.machine.now(), deadline) << virtModeName(mode);
        // Delivery is late by the injection chain, not by much.
        EXPECT_LT(rig.machine.now(), deadline + usec(120))
            << virtModeName(mode);
    }
}

TEST(VirtStack, TimerWorksAtNativeAndSingle)
{
    for (VirtMode mode : {VirtMode::Native, VirtMode::Single}) {
        Rig rig(mode);
        GuestApi &api = rig.stack->api();
        int fired = 0;
        api.setIrqHandler(api.timerVector(), [&] { ++fired; });
        Ticks deadline = rig.machine.now() + usec(50);
        api.wrmsr(msr::ia32TscDeadline,
                  static_cast<std::uint64_t>(deadline));
        int v = api.halt();
        EXPECT_EQ(v, api.timerVector()) << virtModeName(mode);
        EXPECT_EQ(fired, 1);
    }
}

TEST(VirtStack, TimerDeliveryLatencyImprovesWithSvt)
{
    auto latency = [](VirtMode mode) {
        Rig rig(mode);
        GuestApi &api = rig.stack->api();
        api.setIrqHandler(api.timerVector(), [] {});
        api.cpuid(1); // warm up
        Ticks deadline = rig.machine.now() + usec(100);
        api.wrmsr(msr::ia32TscDeadline,
                  static_cast<std::uint64_t>(deadline));
        api.halt();
        return rig.machine.now() - deadline;
    };
    Ticks base = latency(VirtMode::Nested);
    Ticks hw = latency(VirtMode::HwSvt);
    EXPECT_LT(hw, base);
}


TEST(VirtStack, MsrPassthroughSkipsExits)
{
    for (VirtMode mode :
         {VirtMode::Nested, VirtMode::SwSvt, VirtMode::HwSvt}) {
        Rig rig(mode);
        GuestApi &api = rig.stack->api();
        api.cpuid(1); // warm up
        rig.machine.resetCounters();
        api.wrmsr(msr::ia32FsBase, 0x7fff12340000ULL);
        EXPECT_EQ(api.rdmsr(msr::ia32FsBase), 0x7fff12340000ULL)
            << virtModeName(mode);
        // No exits at all for a passthrough MSR.
        EXPECT_EQ(rig.machine.counter("l2.exit.MSR_WRITE"), 0u)
            << virtModeName(mode);
        EXPECT_EQ(rig.machine.counter("l2.exit.MSR_READ"), 0u);
        // A bitmapped MSR still traps.
        api.wrmsr(msr::ia32Lstar, 1);
        EXPECT_EQ(rig.machine.counter("l2.exit.MSR_WRITE"), 1u);
    }
}

TEST(VirtStack, MsrPassthroughIsConfigurable)
{
    Rig rig(VirtMode::Nested);
    GuestApi &api = rig.stack->api();
    api.cpuid(1);
    rig.stack->l1Hv().setMsrPassthrough(msr::ia32FsBase, false);
    rig.machine.resetCounters();
    api.wrmsr(msr::ia32FsBase, 7);
    EXPECT_EQ(rig.machine.counter("l2.exit.MSR_WRITE"), 1u);
    rig.stack->l1Hv().setMsrPassthrough(msr::ia32FsBase, true);
    rig.machine.resetCounters();
    api.wrmsr(msr::ia32FsBase, 9);
    EXPECT_EQ(rig.machine.counter("l2.exit.MSR_WRITE"), 0u);
}

// ------------------------------------------------------------------- MMIO

TEST(VirtStack, L2MmioReachesL1Device)
{
    for (VirtMode mode :
         {VirtMode::Nested, VirtMode::SwSvt, VirtMode::HwSvt}) {
        Rig rig(mode);
        std::uint64_t seen_value = 0;
        Gpa seen_addr = 0;
        rig.stack->l1Hv().registerMmio(
            0xfe000000, pageSize,
            [&](Gpa addr, int size, std::uint64_t value,
                bool is_write) -> std::uint64_t {
                if (is_write) {
                    seen_addr = addr;
                    seen_value = value;
                    return 0;
                }
                (void)size;
                return 0xabcd;
            });
        GuestApi &api = rig.stack->api();
        api.mmioWrite(0xfe000010, 4, 0x1234);
        EXPECT_EQ(seen_addr, 0xfe000010u) << virtModeName(mode);
        EXPECT_EQ(seen_value, 0x1234u) << virtModeName(mode);
        EXPECT_EQ(api.mmioRead(0xfe000010, 4), 0xabcdu)
            << virtModeName(mode);
    }
}

TEST(VirtStack, EptViolationPathFillsEpt02)
{
    Rig rig(VirtMode::Nested);
    rig.stack->l1Hv().registerMmio(
        0xfe000000, pageSize,
        [](Gpa, int, std::uint64_t, bool) -> std::uint64_t {
            return 0;
        });
    rig.machine.resetCounters();
    // First access: ept02 is empty, so the L2 access faults; L0 finds
    // the mmio marking in ept12 and mirrors it (no reflection).
    rig.stack->api().mmioWrite(0xfe000000, 4, 1);
    EXPECT_EQ(rig.machine.counter("l0.ept02_mmio"), 1u);
    std::uint64_t reflects_first = rig.machine.counter("l0.reflect");
    // Second access: misconfig fast path only.
    rig.machine.resetCounters();
    rig.stack->api().mmioWrite(0xfe000000, 4, 2);
    EXPECT_EQ(rig.machine.counter("l0.ept02_mmio"), 0u);
    EXPECT_EQ(rig.machine.counter("l0.reflect"), 1u);
    EXPECT_GE(reflects_first, 1u);
}

TEST(VirtStack, EptViolationReflectedWhenL1HasNoMapping)
{
    Rig rig(VirtMode::Nested);
    rig.machine.resetCounters();
    // Plain memory page never touched: L1 demand-maps it on the
    // reflected violation, then L0 fills ept02 on the retry.
    rig.stack->l1Hv(); // (registered regions not needed)
    GuestApi &api = rig.stack->api();
    // A non-MMIO page read: resolves to Ok after the fault chain.
    auto r = api.mmioRead(0x12345000, 8);
    (void)r;
    EXPECT_GE(rig.machine.counter("l2.exit.EPT_VIOLATION"), 1u);
    EXPECT_GE(rig.machine.counter("l0.ept02_fill"), 1u);
}

// --------------------------------------------------------------- vmcall

TEST(VirtStack, L2HypercallRoundTrip)
{
    for (VirtMode mode :
         {VirtMode::Nested, VirtMode::SwSvt, VirtMode::HwSvt}) {
        Rig rig(mode);
        rig.stack->l1Hv().registerHypercall(
            42, [](std::uint64_t a, std::uint64_t b) {
                return a * 1000 + b;
            });
        EXPECT_EQ(rig.stack->api().vmcall(42, 7, 9), 7009u)
            << virtModeName(mode);
        EXPECT_EQ(rig.stack->api().vmcall(99, 0, 0), ~0ULL);
    }
}


TEST(VirtStack, L2IoPortReachesL1Device)
{
    for (VirtMode mode :
         {VirtMode::Nested, VirtMode::SwSvt, VirtMode::HwSvt}) {
        Rig rig(mode);
        std::uint64_t last_written = 0;
        rig.stack->l1Hv().registerIoPort(
            0x3f8, [&](std::uint16_t, std::uint64_t value,
                       bool is_write) -> std::uint64_t {
                if (is_write) {
                    last_written = value;
                    return 0;
                }
                return 0x61;
            });
        GuestApi &api = rig.stack->api();
        api.ioOut(0x3f8, 'H');
        EXPECT_EQ(last_written, static_cast<std::uint64_t>('H'))
            << virtModeName(mode);
        EXPECT_EQ(api.ioIn(0x3f8), 0x61u) << virtModeName(mode);
        EXPECT_GE(rig.machine.counter("l2.exit.IO_INSTRUCTION"), 2u);
    }
}

TEST(VirtStack, UnregisteredIoPortFloatsBus)
{
    Rig rig(VirtMode::Nested);
    EXPECT_EQ(rig.stack->api().ioIn(0x80), ~0ULL);
}

TEST(VirtStack, L1IoPortReachesL0Device)
{
    Rig rig(VirtMode::Single);
    std::uint64_t seen = 0;
    rig.stack->registerL0IoPort(
        0x70, [&](std::uint16_t, std::uint64_t value,
                  bool is_write) -> std::uint64_t {
            if (is_write) {
                seen = value;
                return 0;
            }
            return seen + 1;
        });
    rig.stack->api().ioOut(0x70, 9);
    EXPECT_EQ(seen, 9u);
    EXPECT_EQ(rig.stack->api().ioIn(0x70), 10u);
}

TEST(VirtStack, InveptTearsDownShadowEpt)
{
    Rig rig(VirtMode::Nested);
    rig.stack->l1Hv().registerMmio(
        0xfe000000, pageSize,
        [](Gpa, int, std::uint64_t, bool) -> std::uint64_t {
            return 0;
        });
    GuestApi &api = rig.stack->api();
    api.mmioWrite(0xfe000000, 4, 1); // populates ept02
    EXPECT_GT(rig.stack->ept02().mappedPages(), 0u);
    // An INVEPT from L1 (e.g. after it changed ept12) tears down the
    // merged table...
    rig.machine.resetCounters();
    // Drive it through an L1 window: inject via the deadlock-test
    // hook is overkill; call the L1-grade op directly in Single-style
    // via the stack's own L1 api during a window is not exposed, so
    // emulate what KVM does: L1 executes INVEPT while handling an L2
    // exit. Use a custom hypercall whose handler runs at L1.
    rig.stack->l1Hv().registerHypercall(
        99, [&](std::uint64_t, std::uint64_t) -> std::uint64_t {
            // Inside the L1 handler context.
            rig.stack->apiAt(1).wrmsr(msr::ia32SpecCtrl, 1);
            return 0;
        });
    api.vmcall(99, 0, 0);
    // Direct check of the emulation path:
    rig.stack->ept02().clear();
    EXPECT_EQ(rig.stack->ept02().mappedPages(), 0u);
    // ...and the next access re-merges lazily.
    api.mmioWrite(0xfe000000, 4, 2);
    EXPECT_GT(rig.stack->ept02().mappedPages(), 0u);
}

// ------------------------------------------------------------- SW SVt

TEST(SwSvt, CommandRingCarriesTrapAndResume)
{
    Rig rig(VirtMode::SwSvt);
    rig.stack->api().cpuid(1);
    // Each reflected exit posts exactly one CMD_VM_TRAP and one
    // CMD_VM_RESUME (Figure 5).
    EXPECT_GE(rig.stack->reflectedExits(), 1u);
}

TEST(SwSvt, PreemptionWithFixInjectsSvtBlocked)
{
    Rig rig(VirtMode::SwSvt, true, /*blocked_fix=*/true);
    rig.stack->api().cpuid(1);
    rig.stack->armSvtThreadPreemption(usec(30));
    Ticks t_preempted =
        timeOf(rig.machine, [&] { rig.stack->api().cpuid(1); });
    EXPECT_EQ(rig.machine.counter("swsvt.svt_blocked"), 1u);
    // The preemption window and the SVT_BLOCKED round are paid for.
    EXPECT_GT(t_preempted, usec(30));
    // And the system keeps working afterwards.
    auto r = rig.stack->api().cpuid(1);
    EXPECT_TRUE(r.ecx & cpuid_feature::hypervisorPresent);
}

TEST(SwSvt, PreemptionWithoutFixDeadlocks)
{
    Rig rig(VirtMode::SwSvt, true, /*blocked_fix=*/false);
    rig.stack->api().cpuid(1);
    rig.stack->armSvtThreadPreemption(usec(30));
    EXPECT_THROW(rig.stack->api().cpuid(1), DeadlockError);
}

TEST(SwSvt, PreemptionOnlyValidInSwSvtMode)
{
    Rig rig(VirtMode::Nested);
    EXPECT_THROW(rig.stack->armSvtThreadPreemption(usec(1)),
                 FatalError);
}

// --------------------------------------------------------------- HW SVt

TEST(HwSvt, ReflectUsesThreadSwitchesNotContextSaves)
{
    Rig rig(VirtMode::HwSvt);
    rig.stack->api().cpuid(1);
    auto switches_before = rig.stack->svtUnit().switchCount();
    rig.stack->api().cpuid(1);
    // One L2 trap: L2->L0, L0->L1, (folded trap: L1->L0->L1),
    // L1->L0, L0->L2 = at least 4 switches.
    EXPECT_GE(rig.stack->svtUnit().switchCount(), switches_before + 4);
}

TEST(HwSvt, CrossContextAccessesReplaceRegisterSync)
{
    Rig rig(VirtMode::HwSvt);
    rig.stack->api().cpuid(1);
    auto before = rig.stack->svtUnit().crossAccessCount();
    rig.stack->api().cpuid(1);
    // The L1 handler reads the leaf and writes 4 result registers
    // plus RIP updates through ctxtld/ctxtst.
    EXPECT_GE(rig.stack->svtUnit().crossAccessCount(), before + 5);
}

TEST(HwSvt, L2RegistersLiveInContext2)
{
    Rig rig(VirtMode::HwSvt);
    rig.stack->api().cpuid(1);
    // The emulated result is visible in context-2's register file.
    EXPECT_EQ(rig.machine.core(0).context(2).readGpr(Gpr::Rax),
              rig.stack->api().cpuid(1).eax);
}

// ------------------------------------------------- property: transparency

TEST(Property, RandomOpSequencesAreTransparentAcrossModes)
{
    Rng rng(2024);
    for (int trial = 0; trial < 6; ++trial) {
        // Build one random program and run it in the three nested
        // modes; all observable results must match exactly.
        std::vector<std::vector<std::uint64_t>> results;
        std::uint64_t seed = rng.next();
        std::vector<Ticks> totals;
        for (VirtMode mode :
             {VirtMode::Nested, VirtMode::SwSvt, VirtMode::HwSvt}) {
            Rig rig(mode);
            rig.stack->l1Hv().registerMmio(
                0xfe000000, pageSize,
                [](Gpa addr, int, std::uint64_t value,
                   bool is_write) -> std::uint64_t {
                    return is_write ? 0 : addr ^ value;
                });
            rig.stack->l1Hv().registerHypercall(
                7, [](std::uint64_t a, std::uint64_t b) {
                    return a + b;
                });
            std::vector<std::uint64_t> out;
            Rng prng(seed);
            GuestApi &api = rig.stack->api();
            Ticks t0 = rig.machine.now();
            for (int op = 0; op < 40; ++op) {
                switch (prng.below(6)) {
                  case 0:
                    out.push_back(api.cpuid(prng.below(4)).eax);
                    break;
                  case 1: {
                    std::uint32_t idx = 0xc0000100 +
                        static_cast<std::uint32_t>(prng.below(3));
                    api.wrmsr(idx, prng.next());
                    break;
                  }
                  case 2:
                    out.push_back(
                        api.rdmsr(0xc0000100 +
                                  static_cast<std::uint32_t>(
                                      prng.below(3))));
                    break;
                  case 3:
                    api.mmioWrite(0xfe000000 + 8 * prng.below(16), 4,
                                  prng.next());
                    break;
                  case 4:
                    out.push_back(
                        api.mmioRead(0xfe000000 + 8 * prng.below(16),
                                     4));
                    break;
                  case 5:
                    out.push_back(api.vmcall(7, prng.below(100),
                                             prng.below(100)));
                    break;
                }
            }
            results.push_back(std::move(out));
            totals.push_back(rig.machine.now() - t0);
        }
        EXPECT_EQ(results[0], results[1]) << "trial " << trial;
        EXPECT_EQ(results[0], results[2]) << "trial " << trial;
        // And SVt is never slower than the baseline.
        EXPECT_LE(totals[1], totals[0]) << "trial " << trial;
        EXPECT_LE(totals[2], totals[1]) << "trial " << trial;
    }
}

// --------------------------------------------------------- channel model

TEST(Channel, WakeLatencyOrderings)
{
    CostModel costs;
    auto wake = [&](WaitMechanism m, Placement p) {
        ChannelModel ch{m, p};
        return ch.wakeLatency(costs);
    };
    // Section 6.1: polling has the lowest latency...
    EXPECT_LT(wake(WaitMechanism::Poll, Placement::SmtSibling),
              wake(WaitMechanism::Mwait, Placement::SmtSibling));
    // ...mutex has a large startup cost...
    EXPECT_LT(wake(WaitMechanism::Mwait, Placement::SmtSibling),
              wake(WaitMechanism::Mutex, Placement::SmtSibling));
    // ...and cross-NUMA placement is ~an order of magnitude worse.
    EXPECT_GE(wake(WaitMechanism::Mwait, Placement::CrossNode),
              5 * wake(WaitMechanism::Mwait, Placement::SameNode));
}

TEST(Channel, OnlySmtPollingStealsCycles)
{
    CostModel costs;
    for (auto m : {WaitMechanism::Poll, WaitMechanism::Mwait,
                   WaitMechanism::Mutex}) {
        for (auto p : {Placement::SmtSibling, Placement::SameNode,
                       Placement::CrossNode}) {
            ChannelModel ch{m, p};
            double slow = ch.workerSlowdown(costs);
            if (m == WaitMechanism::Poll &&
                p == Placement::SmtSibling) {
                EXPECT_GT(slow, 1.0);
            } else {
                EXPECT_EQ(slow, 1.0);
            }
        }
    }
}

TEST(Channel, RingProtocol)
{
    Machine machine(MachineTopology{1, 1, 2});
    CommandRing ring(machine, "ring.test", 2);
    EXPECT_FALSE(ring.hasMessage());
    EXPECT_THROW(ring.pop(), PanicError);
    ChannelMessage msg;
    msg.command = SwSvtCommand::VmTrap;
    msg.gprs[0] = 77;
    ring.post(msg);
    EXPECT_TRUE(ring.hasMessage());
    EXPECT_EQ(ring.depth(), 1u);
    auto got = ring.pop();
    EXPECT_EQ(got.gprs[0], 77u);
    EXPECT_FALSE(ring.hasMessage());
    // A full ring back-pressures the producer instead of losing the
    // message: the post still lands, the producer pays ringFullWait
    // and the full counter increments.
    ring.post(msg);
    ring.post(msg);
    Ticks before = machine.now();
    EXPECT_TRUE(ring.post(msg));
    EXPECT_EQ(ring.fullCount(), 1u);
    EXPECT_GE(machine.now() - before, machine.costs().ringFullWait);
    EXPECT_EQ(ring.depth(), 3u);
}

TEST(Channel, RingRejectsZeroCapacity)
{
    Machine machine(MachineTopology{1, 1, 2});
    EXPECT_THROW(CommandRing(machine, "ring.test", 0), FatalError);
}

TEST(Channel, RingChargesSymmetricPayload)
{
    // Regression: pop() used to charge only 4 payload values while
    // post() charged the full message (numGprs + 2 + 7), silently
    // under-costing every SW SVt consumer-side payload read.
    Machine machine(MachineTopology{1, 1, 2});
    CommandRing ring(machine, "ring.test", 2);
    const CostModel &c = machine.costs();
    ChannelMessage msg;

    Ticks t0 = machine.now();
    ring.post(msg);
    Ticks post_cost = machine.now() - t0;

    t0 = machine.now();
    ring.pop();
    Ticks pop_cost = machine.now() - t0;

    EXPECT_EQ(post_cost,
              c.ringPost + c.ringPayloadValue * ringPayloadValues);
    // The payload crosses the shared lines once in each direction:
    // consumer pays the same copy cost, minus the descriptor store.
    EXPECT_EQ(pop_cost, post_cost - c.ringPost);
}

TEST(Channel, SwSvtFasterWithMwaitThanCrossNodeChannel)
{
    auto run = [](Placement p) {
        Machine machine(topoFor(VirtMode::SwSvt));
        StackConfig cfg;
        cfg.mode = VirtMode::SwSvt;
        cfg.channel.mechanism = WaitMechanism::Mwait;
        cfg.channel.placement = p;
        VirtStack stack(machine, cfg);
        stack.api().cpuid(1);
        Ticks t0 = machine.now();
        stack.api().cpuid(1);
        return machine.now() - t0;
    };
    EXPECT_LT(run(Placement::SmtSibling), run(Placement::CrossNode));
}

} // namespace
} // namespace svtsim
