/**
 * @file
 * Unit tests for the stats module: summaries, percentiles, histograms,
 * the paper's confidence methodology, and table rendering.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/log.h"
#include "sim/random.h"
#include "stats/confidence.h"
#include "stats/histogram.h"
#include "stats/summary.h"
#include "stats/table.h"

namespace svtsim {
namespace {

// -------------------------------------------------------------- summary

TEST(Summary, EmptyIsZero)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
    EXPECT_EQ(s.sem(), 0.0);
}

TEST(Summary, SingleSample)
{
    Summary s;
    s.add(42.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.mean(), 42.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 42.0);
    EXPECT_EQ(s.max(), 42.0);
}

TEST(Summary, KnownMoments)
{
    Summary s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance with n-1 = 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, MergeMatchesCombined)
{
    Rng rng(5);
    Summary a, b, all;
    for (int i = 0; i < 1000; ++i) {
        double x = rng.normal(10, 3);
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
    EXPECT_EQ(a.min(), all.min());
    EXPECT_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmpty)
{
    Summary a, b;
    a.add(1.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    b.merge(a);
    EXPECT_EQ(b.count(), 1u);
    EXPECT_EQ(b.mean(), 1.0);
}

TEST(Summary, ResetClears)
{
    Summary s;
    s.add(1);
    s.add(2);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(Summary, SemShrinksWithSamples)
{
    Rng rng(6);
    Summary small, large;
    for (int i = 0; i < 100; ++i)
        small.add(rng.normal(0, 1));
    for (int i = 0; i < 10000; ++i)
        large.add(rng.normal(0, 1));
    EXPECT_LT(large.sem(), small.sem());
}

// ---------------------------------------------------------- percentiles

TEST(Percentiles, QuantilesOfKnownSequence)
{
    Percentiles p;
    for (int i = 1; i <= 100; ++i)
        p.add(i);
    EXPECT_NEAR(p.quantile(0.0), 1.0, 1e-9);
    EXPECT_NEAR(p.quantile(1.0), 100.0, 1e-9);
    EXPECT_NEAR(p.p50(), 50.5, 1e-9);
    EXPECT_NEAR(p.p99(), 99.01, 1e-9);
}

TEST(Percentiles, SingleSample)
{
    Percentiles p;
    p.add(7.0);
    EXPECT_EQ(p.quantile(0.0), 7.0);
    EXPECT_EQ(p.quantile(0.3), 7.0);
    EXPECT_EQ(p.quantile(1.0), 7.0);
    EXPECT_EQ(p.p99(), 7.0);
}

TEST(Percentiles, UnsortedInsertsExactQuantiles)
{
    // quantile() must sort lazily: extremes and the median are exact
    // regardless of insertion order.
    Percentiles p;
    for (double v : {5.0, 1.0, 4.0, 2.0, 3.0})
        p.add(v);
    EXPECT_DOUBLE_EQ(p.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(p.quantile(0.5), 3.0);
    EXPECT_DOUBLE_EQ(p.quantile(1.0), 5.0);
    // Interleave another add after a query: the lazy sort must not
    // lose samples added afterwards.
    p.add(0.5);
    EXPECT_DOUBLE_EQ(p.quantile(0.0), 0.5);
    EXPECT_DOUBLE_EQ(p.quantile(1.0), 5.0);
}

TEST(Percentiles, EmptyQuantilePanics)
{
    Percentiles p;
    EXPECT_THROW(p.quantile(0.5), PanicError);
}

TEST(Percentiles, OutOfRangeQuantilePanics)
{
    Percentiles p;
    p.add(1.0);
    EXPECT_THROW(p.quantile(-0.1), PanicError);
    EXPECT_THROW(p.quantile(1.1), PanicError);
}

TEST(Percentiles, InsertionOrderIrrelevant)
{
    Rng rng(8);
    std::vector<double> vals;
    for (int i = 0; i < 500; ++i)
        vals.push_back(rng.uniform(0, 100));
    Percentiles sorted_in, shuffled_in;
    auto sorted = vals;
    std::sort(sorted.begin(), sorted.end());
    for (double v : sorted)
        sorted_in.add(v);
    for (double v : vals)
        shuffled_in.add(v);
    for (double q : {0.1, 0.5, 0.9, 0.99})
        EXPECT_DOUBLE_EQ(sorted_in.quantile(q), shuffled_in.quantile(q));
}

TEST(Percentiles, MeanMatchesSummary)
{
    Rng rng(9);
    Percentiles p;
    Summary s;
    for (int i = 0; i < 1000; ++i) {
        double x = rng.exponential(3.0);
        p.add(x);
        s.add(x);
    }
    EXPECT_NEAR(p.mean(), s.mean(), 1e-9);
}

// Property: against exact nearest-rank on random data.
TEST(Percentiles, PropertyAgainstSortedReference)
{
    Rng rng(10);
    for (int trial = 0; trial < 10; ++trial) {
        Percentiles p;
        std::vector<double> ref;
        int n = 50 + static_cast<int>(rng.below(500));
        for (int i = 0; i < n; ++i) {
            double x = rng.logNormal(1.0, 1.0);
            p.add(x);
            ref.push_back(x);
        }
        std::sort(ref.begin(), ref.end());
        for (double q : {0.25, 0.5, 0.75, 0.95, 0.99}) {
            double pos = q * (n - 1);
            auto lo = static_cast<std::size_t>(pos);
            auto hi = std::min(lo + 1, ref.size() - 1);
            double frac = pos - static_cast<double>(lo);
            double expect = ref[lo] * (1 - frac) + ref[hi] * frac;
            EXPECT_DOUBLE_EQ(p.quantile(q), expect);
        }
    }
}

// ------------------------------------------------------------ histogram

TEST(Histogram, BinsAndEdges)
{
    Histogram h(0, 10, 10);
    h.add(0.5);
    h.add(1.5);
    h.add(1.7);
    h.add(9.99);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(1), 2u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.binLow(1), 1.0);
}

TEST(Histogram, UnderAndOverflow)
{
    Histogram h(0, 10, 5);
    h.add(-1);
    h.add(10);
    h.add(1e9);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, RejectsBadConstruction)
{
    EXPECT_THROW(Histogram(0, 10, 0), FatalError);
    EXPECT_THROW(Histogram(10, 10, 5), FatalError);
    EXPECT_THROW(Histogram(10, 5, 5), FatalError);
}

TEST(Histogram, ResetClears)
{
    Histogram h(0, 1, 4);
    h.add(0.5);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.binCount(2), 0u);
}

TEST(Histogram, RenderNonEmpty)
{
    Histogram h(0, 10, 10);
    for (int i = 0; i < 50; ++i)
        h.add(5.5);
    std::string out = h.render();
    EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(Histogram, BinIndexOutOfRangePanics)
{
    Histogram h(0, 1, 2);
    EXPECT_THROW(h.binCount(2), PanicError);
}

// ----------------------------------------------------------- confidence

TEST(Confidence, ConvergesOnLowVarianceSeries)
{
    Rng rng(11);
    ConfidenceRunner runner;
    auto r = runner.run([&] { return rng.normal(100.0, 0.5); });
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.mean, 100.0, 1.0);
    EXPECT_GE(r.accepted, runner.minSamples);
}

TEST(Confidence, ConstantSeriesConvergesImmediately)
{
    ConfidenceRunner runner;
    auto r = runner.run([] { return 42.0; });
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.mean, 42.0);
    EXPECT_EQ(r.stddev, 0.0);
    EXPECT_EQ(r.accepted, runner.minSamples);
}

TEST(Confidence, RejectsOutliers)
{
    // A tight series with occasional 100x spikes: the 4-sigma filter
    // must drop the spikes and the mean must track the base value.
    Rng rng(12);
    int i = 0;
    ConfidenceRunner runner;
    runner.minSamples = 500;
    auto r = runner.run([&]() -> double {
        ++i;
        if (i % 100 == 0)
            return 1000.0;
        return rng.normal(10.0, 0.1);
    });
    EXPECT_GT(r.rejected, 0u);
    EXPECT_NEAR(r.mean, 10.0, 0.5);
}

TEST(Confidence, HighVarianceNeedsMoreSamples)
{
    Rng rng(13);
    ConfidenceRunner runner;
    auto tight = runner.run([&] { return rng.normal(100, 0.5); });
    auto loose = runner.run([&] { return rng.normal(100, 20.0); });
    EXPECT_GT(loose.accepted + loose.rejected,
              tight.accepted + tight.rejected);
}

TEST(Confidence, GivesUpAtMaxSamples)
{
    Rng rng(14);
    ConfidenceRunner runner;
    runner.maxSamples = 100;
    // Wild multi-modal data cannot converge to 1% in 100 samples.
    auto r = runner.run([&] { return rng.uniform(0.0, 1000.0); });
    EXPECT_FALSE(r.converged);
    EXPECT_LE(r.accepted + r.rejected, 100u);
}

TEST(Confidence, EvaluateFixedSeries)
{
    ConfidenceRunner runner;
    std::vector<double> samples(1000, 5.0);
    auto r = runner.evaluate(samples);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.mean, 5.0);
}

TEST(Confidence, EvaluateEmptyFails)
{
    ConfidenceRunner runner;
    EXPECT_THROW(runner.evaluate({}), FatalError);
}

TEST(Confidence, MinSamplesValidated)
{
    ConfidenceRunner runner;
    runner.minSamples = 1;
    EXPECT_THROW(runner.run([] { return 1.0; }), FatalError);
}

// ----------------------------------------------------------------- table

TEST(Table, RendersHeaderAndRows)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "2"});
    std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("beta"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ArityMismatchFails)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), FatalError);
}

TEST(Table, EmptyHeaderFails)
{
    EXPECT_THROW(Table({}), FatalError);
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(10.0, 0), "10");
}

TEST(Table, ColumnsAligned)
{
    Table t({"x", "yyyyy"});
    t.addRow({"aaaaaaa", "1"});
    std::string out = t.render();
    // Second line is the separator; its width covers the widest cells.
    auto first_nl = out.find('\n');
    auto second_nl = out.find('\n', first_nl + 1);
    std::string sep = out.substr(first_nl + 1, second_nl - first_nl - 1);
    EXPECT_GE(sep.size(), std::string("aaaaaaa  yyyyy").size());
}

} // namespace
} // namespace svtsim
