/**
 * @file
 * Tests for the timing-wheel event queue: a randomized differential
 * test against the retired binary-heap implementation (the oracle), a
 * zero-steady-state-allocation lock-in for the arena + small-buffer
 * closures, and regression tests for the wheel-specific machinery
 * (cascades, far map, handle generations, label interning).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "sim/closure.h"
#include "sim/event_queue.h"
#include "sim/log.h"
#include "sim/random.h"
#include "sim/reference_event_queue.h"
#include "sim/ticks.h"

// ---------------------------------------------------------------------
// Global allocation counter. Only the deltas measured inside
// ZeroAllocationSteadyState matter; everything else just passes
// through to malloc/free.

static std::atomic<std::uint64_t> g_allocCount{0};

static void *
countedAlloc(std::size_t n)
{
    ++g_allocCount;
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *operator new(std::size_t n) { return countedAlloc(n); }
void *operator new[](std::size_t n) { return countedAlloc(n); }
void *
operator new(std::size_t n, std::align_val_t a)
{
    ++g_allocCount;
    if (void *p = std::aligned_alloc(static_cast<std::size_t>(a),
                                     (n + static_cast<std::size_t>(a) - 1) &
                                         ~(static_cast<std::size_t>(a) - 1)))
        return p;
    throw std::bad_alloc();
}
void *
operator new[](std::size_t n, std::align_val_t a)
{
    return operator new(n, a);
}
void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
void operator delete(void *p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace svtsim {
namespace {

// ------------------------------------------------------- EventClosure

TEST(EventClosure, SmallCaptureStaysInline)
{
    int hits = 0;
    int *p = &hits;
    EventClosure c([p] { ++*p; });
    EXPECT_TRUE(c.storedInline());
    c();
    c();
    EXPECT_EQ(hits, 2);
}

TEST(EventClosure, LargeCaptureFallsBackToHeap)
{
    struct Big
    {
        char pad[128];
    } big = {};
    int hits = 0;
    int *p = &hits;
    EventClosure c([p, big] {
        ++*p;
        (void)big;
    });
    EXPECT_FALSE(c.storedInline());
    c();
    EXPECT_EQ(hits, 1);
}

TEST(EventClosure, ResetReleasesCapturedResources)
{
    auto token = std::make_shared<int>(7);
    EventClosure c([token] { (void)*token; });
    EXPECT_EQ(token.use_count(), 2);
    c.reset();
    EXPECT_EQ(token.use_count(), 1);
    EXPECT_FALSE(static_cast<bool>(c));
}

TEST(EventClosure, MoveTransfersOwnership)
{
    auto token = std::make_shared<int>(7);
    EventClosure a([token] { (void)*token; });
    EXPECT_EQ(token.use_count(), 2);
    EventClosure b(std::move(a));
    EXPECT_EQ(token.use_count(), 2);
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_TRUE(static_cast<bool>(b));
    b.reset();
    EXPECT_EQ(token.use_count(), 1);
}

// ---------------------------------------------- differential vs oracle

/**
 * One pre-generated operation, replayed identically against both
 * queue implementations. Closures log (tag, fire-time) pairs and may
 * schedule a chained follow-up, so the test also covers events
 * scheduled from inside handlers.
 */
struct Op
{
    enum Kind
    {
        Schedule,     ///< scheduleIn(delta), possibly chained
        Cancel,       ///< deschedule the handle from schedule op a
        AdvanceBy,    ///< advanceBy(delta)
        RunNext,      ///< runNext()
        RunUntil,     ///< runUntil(executed >= current + a)
        CheckNext,    ///< compare nextEventTime()
    };
    Kind kind;
    Ticks delta = 0;
    std::size_t a = 0;
    int chain = 0;
};

template <class Q, class Id>
struct Driver
{
    Q q;
    std::vector<Id> handles;
    std::vector<std::pair<int, Ticks>> log;
    int nextTag = 0;

    void
    scheduleChained(Ticks delta, int chain)
    {
        const int tag = nextTag++;
        handles.push_back(q.scheduleIn(delta, [this, tag, chain] {
            log.emplace_back(tag, q.now());
            if (chain > 0) {
                // Deterministic follow-up delta derived from the tag.
                const Ticks d =
                    static_cast<Ticks>((tag * 2654435761u) % 100000);
                scheduleChained(d, chain - 1);
            }
        }));
    }
};

TEST(EventWheelDifferential, MatchesReferenceHeapOnRandomOps)
{
    // ~1e6 operations overall: 16 trials x 32k ops, plus the chained
    // events the closures schedule and the end-of-trial drain.
    const int trials = 16;
    const int opsPerTrial = 32768;
    Rng rng(20260808);

    for (int trial = 0; trial < trials; ++trial) {
        std::vector<Op> ops;
        ops.reserve(static_cast<std::size_t>(opsPerTrial));
        std::size_t scheduled = 0;
        for (int i = 0; i < opsPerTrial; ++i) {
            const double roll = rng.uniform();
            Op op;
            if (roll < 0.45 || scheduled == 0) {
                op.kind = Op::Schedule;
                // Mix of distances: same-tick, level-0, mid-wheel,
                // high-wheel, and (rarely) beyond the far horizon.
                const double d = rng.uniform();
                if (d < 0.10)
                    op.delta = 0;
                else if (d < 0.45)
                    op.delta = static_cast<Ticks>(rng.below(256));
                else if (d < 0.75)
                    op.delta = static_cast<Ticks>(rng.below(1u << 16));
                else if (d < 0.92)
                    op.delta = static_cast<Ticks>(rng.below(1u << 24));
                else if (d < 0.99)
                    op.delta = static_cast<Ticks>(rng.below(1u << 30))
                               << 18;
                else
                    op.delta = maxTick; // saturating far/"infinite"
                op.chain = rng.chance(0.15) ? 2 : 0;
                ++scheduled;
            } else if (roll < 0.70) {
                op.kind = Op::Cancel;
                op.a = rng.below(scheduled);
            } else if (roll < 0.90) {
                op.kind = Op::AdvanceBy;
                const double d = rng.uniform();
                if (d < 0.5)
                    op.delta = static_cast<Ticks>(rng.below(4096));
                else if (d < 0.9)
                    op.delta = static_cast<Ticks>(rng.below(1u << 20));
                else
                    op.delta = static_cast<Ticks>(rng.below(1u << 28));
            } else if (roll < 0.94) {
                op.kind = Op::RunNext;
            } else if (roll < 0.97) {
                op.kind = Op::RunUntil;
                op.a = 1 + rng.below(4);
            } else {
                op.kind = Op::CheckNext;
            }
            ops.push_back(op);
        }

        Driver<EventQueue, EventId> wheel;
        Driver<ReferenceEventQueue, ReferenceEventId> oracle;

        for (const Op &op : ops) {
            switch (op.kind) {
            case Op::Schedule:
                wheel.scheduleChained(op.delta, op.chain);
                oracle.scheduleChained(op.delta, op.chain);
                break;
            case Op::Cancel: {
                const bool a = wheel.q.deschedule(wheel.handles[op.a]);
                const bool b =
                    oracle.q.deschedule(oracle.handles[op.a]);
                ASSERT_EQ(a, b);
                break;
            }
            case Op::AdvanceBy:
                wheel.q.advanceBy(op.delta);
                oracle.q.advanceBy(op.delta);
                break;
            case Op::RunNext:
                ASSERT_EQ(wheel.q.runNext(), oracle.q.runNext());
                break;
            case Op::RunUntil: {
                const std::uint64_t targetW =
                    wheel.q.executedCount() + op.a;
                const std::uint64_t targetO =
                    oracle.q.executedCount() + op.a;
                ASSERT_EQ(wheel.q.runUntil([&] {
                    return wheel.q.executedCount() >= targetW;
                }),
                          oracle.q.runUntil([&] {
                              return oracle.q.executedCount() >=
                                     targetO;
                          }));
                break;
            }
            case Op::CheckNext:
                ASSERT_EQ(wheel.q.nextEventTime(),
                          oracle.q.nextEventTime());
                break;
            }
            ASSERT_EQ(wheel.q.now(), oracle.q.now());
            ASSERT_EQ(wheel.q.size(), oracle.q.size());
            ASSERT_EQ(wheel.q.empty(), oracle.q.empty());
            ASSERT_EQ(wheel.q.executedCount(),
                      oracle.q.executedCount());
            ASSERT_EQ(wheel.log.size(), oracle.log.size());
        }

        // Drain both completely (fires the far/maxTick stragglers) and
        // require identical fire order and now() trajectory.
        wheel.q.advanceTo(maxTick);
        oracle.q.advanceTo(maxTick);
        ASSERT_TRUE(wheel.q.empty());
        ASSERT_TRUE(oracle.q.empty());
        ASSERT_EQ(wheel.q.executedCount(), oracle.q.executedCount());
        ASSERT_EQ(wheel.log, oracle.log)
            << "fire order diverged in trial " << trial;

        // pending() agrees for every handle ever issued.
        for (std::size_t i = 0; i < wheel.handles.size(); ++i)
            ASSERT_EQ(wheel.q.pending(wheel.handles[i]),
                      oracle.q.pending(oracle.handles[i]));
    }
}

// ------------------------------------------------- zero-alloc lock-in

TEST(EventWheel, ZeroAllocationSteadyState)
{
    EventQueue eq;
    // Warm-up: grow the arena past the steady-state live-event
    // high-water mark and intern every label the loop uses.
    for (int i = 0; i < 1024; ++i)
        eq.scheduleIn(nsec(1 + i % 7), [] {}, "wheel-warm-tick");
    eq.scheduleIn(msec(1), [] {}, "wheel-warm-watchdog");
    eq.advanceBy(msec(2));
    ASSERT_TRUE(eq.empty());

    // Steady state: watchdog-style schedule/cancel churn plus a burst
    // of short timers per iteration, all fired. The arena freelist,
    // inline closures and interned labels make this malloc-free.
    const std::uint64_t before = g_allocCount.load();
    std::uint64_t fired = 0;
    for (int iter = 0; iter < 20000; ++iter) {
        EventId watchdog =
            eq.scheduleIn(msec(5), [] {}, "wheel-warm-watchdog");
        for (int j = 0; j < 8; ++j)
            eq.scheduleIn(nsec(100 * (j + 1)),
                          [&fired] { ++fired; }, "wheel-warm-tick");
        eq.advanceBy(usec(1));
        eq.deschedule(watchdog);
    }
    eq.advanceBy(msec(10));
    const std::uint64_t after = g_allocCount.load();
    EXPECT_EQ(after - before, 0u)
        << "steady-state schedule/cancel/fire cycle allocated";
    EXPECT_EQ(fired, 20000u * 8u);
    EXPECT_TRUE(eq.empty());
}

// ------------------------------------- cancel-everything consistency

TEST(EventWheel, CancelEverythingKeepsAccessorsConsistent)
{
    // Regression: with the lazy-deletion heap, a queue holding nothing
    // but cancelled entries said empty() while nextEventTime() still
    // surfaced stale heap debris until something pruned it. Eager
    // removal makes all accessors agree by construction; lock that in.
    EventQueue eq;
    std::vector<EventId> ids;
    for (int i = 0; i < 100; ++i)
        ids.push_back(eq.scheduleIn(nsec(i + 1), [] {}));
    for (EventId id : ids)
        EXPECT_TRUE(eq.deschedule(id));

    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.size(), 0u);
    EXPECT_EQ(eq.nextEventTime(), maxTick);
    EXPECT_FALSE(eq.runNext());
    EXPECT_FALSE(eq.runUntil([] { return false; }));
    eq.advanceBy(usec(1));
    EXPECT_EQ(eq.executedCount(), 0u);

    // The queue stays fully usable afterwards.
    bool ran = false;
    eq.scheduleIn(nsec(5), [&] { ran = true; });
    EXPECT_FALSE(eq.empty());
    EXPECT_EQ(eq.nextEventTime(), eq.now() + nsec(5));
    eq.advanceBy(nsec(10));
    EXPECT_TRUE(ran);
    EXPECT_TRUE(eq.empty());
}

TEST(EventWheel, RunUntilOnCancelledOnlyQueueReturnsImmediately)
{
    EventQueue eq;
    EventId a = eq.scheduleIn(nsec(10), [] {});
    EventId b = eq.scheduleIn(usec(10), [] {});
    eq.deschedule(a);
    eq.deschedule(b);
    int predCalls = 0;
    EXPECT_FALSE(eq.runUntil([&] {
        ++predCalls;
        return false;
    }));
    // Initial evaluation only: nothing to run.
    EXPECT_EQ(predCalls, 1);
    EXPECT_EQ(eq.now(), 0);
}

// --------------------------------------------- overflow saturation

TEST(EventWheel, ScheduleInSaturatesAtMaxTick)
{
    // Regression: now_ + delta used to overflow signed int64 (UB) for
    // maxTick-style timeout deltas and then panic with a nonsense
    // timestamp. It saturates now.
    EventQueue eq;
    eq.advanceBy(usec(3));
    EventId id = eq.scheduleIn(maxTick, [] {});
    EXPECT_TRUE(eq.pending(id));
    EXPECT_EQ(eq.nextEventTime(), maxTick);
    EXPECT_TRUE(eq.deschedule(id));
    EXPECT_TRUE(eq.empty());
}

TEST(EventWheel, AdvanceBySaturatesAtMaxTick)
{
    EventQueue eq;
    eq.advanceBy(usec(1));
    bool ran = false;
    eq.scheduleIn(maxTick, [&] { ran = true; });
    eq.advanceBy(maxTick); // would overflow pre-fix
    EXPECT_EQ(eq.now(), maxTick);
    EXPECT_TRUE(ran); // a saturated advance reaches saturated timers
    eq.advanceBy(maxTick); // idempotent at the rail
    EXPECT_EQ(eq.now(), maxTick);
}

TEST(EventWheel, NegativeDeltaStillPanics)
{
    EventQueue eq;
    eq.advanceBy(usec(1));
    EXPECT_THROW(eq.scheduleIn(-5, [] {}), PanicError);
}

// ------------------------------------------------- Clock::consume

TEST(Clock, NegativeConsumePanics)
{
    // Regression: consume() used to silently ignore negative ticks,
    // masking cost-model arithmetic bugs (a subtraction past zero)
    // that advanceBy's own assert was written to catch.
    EventQueue eq;
    Clock clock(eq);
    EXPECT_THROW(clock.consume(-1), PanicError);
    EXPECT_NO_THROW(clock.consume(0));
    clock.consume(nsec(3));
    EXPECT_EQ(clock.now(), nsec(3));
}

// ------------------------------------------------- wheel mechanics

TEST(EventWheel, SameTickFifoAcrossCascadeBoundaries)
{
    // Two events at the same tick, scheduled from different distances:
    // the first travels through upper wheel levels and cascades down,
    // the second is inserted directly into the level-0 slot after time
    // has advanced close to the target. Seq order must survive.
    EventQueue eq;
    std::vector<int> order;
    const Ticks target = usec(300); // 3e8 ticks: enters at level 3
    eq.schedule(target, [&] { order.push_back(1); });
    eq.advanceTo(target - nsec(50));
    eq.schedule(target, [&] { order.push_back(2); }); // level 0/1 direct
    eq.schedule(target, [&] { order.push_back(3); });
    eq.advanceTo(target + 1);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventWheel, FarHorizonEventsFireInOrder)
{
    EventQueue eq;
    std::vector<int> order;
    const Ticks beyond = static_cast<Ticks>(1) << 57; // past the wheel
    eq.schedule(beyond + 5, [&] { order.push_back(2); });
    eq.schedule(beyond, [&] { order.push_back(1); });
    eq.schedule(maxTick, [&] { order.push_back(3); });
    EXPECT_EQ(eq.nextEventTime(), beyond);
    EXPECT_EQ(eq.size(), 3u);
    eq.advanceTo(beyond + 5);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(eq.nextEventTime(), maxTick);
    eq.advanceTo(maxTick);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_TRUE(eq.empty());
}

TEST(EventWheel, StaleHandleDoesNotAliasRecycledRecord)
{
    EventQueue eq;
    bool firstRan = false, secondRan = false;
    EventId a = eq.scheduleIn(nsec(1), [&] { firstRan = true; });
    eq.advanceBy(nsec(2));
    EXPECT_TRUE(firstRan);
    EXPECT_FALSE(eq.pending(a));
    // The arena slot is recycled by the next schedule; the stale
    // handle must not reach the new tenant.
    EventId b = eq.scheduleIn(nsec(5), [&] { secondRan = true; });
    EXPECT_NE(a, b);
    EXPECT_FALSE(eq.pending(a));
    EXPECT_FALSE(eq.deschedule(a));
    EXPECT_TRUE(eq.pending(b));
    eq.advanceBy(nsec(10));
    EXPECT_TRUE(secondRan);
}

TEST(EventWheel, LabelsAreInternedOnce)
{
    EventQueue eq;
    std::vector<EventId> ids;
    for (int i = 0; i < 100; ++i)
        ids.push_back(eq.scheduleIn(nsec(i + 1), [] {}, "ipi"));
    EventId other = eq.scheduleIn(usec(1), [] {}, "tsc-deadline");
    EXPECT_EQ(eq.internedLabelCount(), 2u);
    EXPECT_EQ(eq.eventLabel(ids[0]), "ipi");
    EXPECT_EQ(eq.eventLabel(ids[99]), "ipi");
    EXPECT_EQ(eq.eventLabel(other), "tsc-deadline");
    // Same content through a different buffer still dedups.
    std::string dynamic = std::string("ip") + "i";
    EventId dyn = eq.scheduleIn(usec(2), [] {}, dynamic);
    EXPECT_EQ(eq.internedLabelCount(), 2u);
    EXPECT_EQ(eq.eventLabel(dyn), "ipi");
    eq.advanceBy(usec(3));
    EXPECT_EQ(eq.eventLabel(ids[0]), "");
}

TEST(EventWheel, HandlerSchedulingAtCurrentTickRunsInSameAdvance)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(nsec(10), [&] {
        order.push_back(1);
        eq.schedule(eq.now(), [&] { order.push_back(2); });
    });
    eq.advanceTo(nsec(10));
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_TRUE(eq.empty());
}

TEST(EventWheel, ManyEventsAcrossAllLevels)
{
    // Sweep deltas through every wheel level (and the far map) and
    // verify global time ordering plus exact counts.
    EventQueue eq;
    std::vector<Ticks> fired;
    int n = 0;
    for (int level = 0; level < 8; ++level) {
        const Ticks base = static_cast<Ticks>(1)
                           << (level * EventQueue::slotBits);
        for (int j = 0; j < 32; ++j) {
            eq.schedule(base + j * 3,
                        [&fired, &eq] { fired.push_back(eq.now()); });
            ++n;
        }
    }
    eq.advanceTo(static_cast<Ticks>(1) << 60);
    EXPECT_EQ(static_cast<int>(fired.size()), n);
    for (std::size_t i = 1; i < fired.size(); ++i)
        EXPECT_LE(fired[i - 1], fired[i]);
    EXPECT_TRUE(eq.empty());
}

} // namespace
} // namespace svtsim
