/**
 * @file
 * Soft-realtime playback in a nested VM: play 30 seconds of the 4K
 * clip at a chosen frame rate and report dropped frames, with and
 * without SVt (a short interactive version of Figure 10).
 *
 *   $ ./build/examples/video_player [fps]
 */

#include <cstdio>
#include <cstdlib>

#include "io/ramdisk.h"
#include "io/virtio_blk.h"
#include "system/nested_system.h"
#include "workloads/video.h"

using namespace svtsim;

int
main(int argc, char **argv)
{
    double fps = 120;
    if (argc > 1)
        fps = std::atof(argv[1]);
    if (fps <= 0 || fps > 1000) {
        std::fprintf(stderr, "usage: %s [fps 1..1000]\n", argv[0]);
        return 1;
    }

    std::printf("Playing 30 s of 4K video at %.0f FPS in a nested "
                "VM...\n\n",
                fps);
    for (VirtMode mode : {VirtMode::Nested, VirtMode::SwSvt}) {
        NestedSystem sys(mode);
        RamDisk disk(sys.machine(), "media");
        VirtioBlkStack blk(sys.stack(), disk);
        VideoPlayback player(sys.stack(), blk);
        VideoResult r = player.run(fps, sec(30));
        std::printf("  %-16s %d/%d frames dropped (%d from late "
                    "timer wakeups), vCPU %0.0f%% busy\n",
                    virtModeName(mode), r.droppedFrames,
                    r.totalFrames, r.lateWakeupDrops,
                    r.busyFraction * 100);
    }
    std::printf("\nAt high frame rates the per-frame timer and I/O "
                "trap chains eat the pacing slack; SVt returns it.\n");
    return 0;
}
