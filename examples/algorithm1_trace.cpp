/**
 * @file
 * Algorithm 1, step by step: run exactly one cpuid in the nested
 * baseline, SW SVt and HW SVt, and print where the time went — the
 * same six stages as the paper's Table 1, plus the SW SVt channel.
 *
 *   $ ./build/examples/algorithm1_trace
 */

#include <cstdio>

#include "stats/table.h"
#include "system/nested_system.h"

using namespace svtsim;

namespace {

struct StageRow
{
    const char *scope;
    const char *what;
};

const StageRow stages[] = {
    {"stage.l2", "L2 executes the sensitive instruction"},
    {"stage.switch_l2_l0", "switch L2<->L0 (trap + final resume)"},
    {"stage.transform", "vmcs02 <-> vmcs12 transforms"},
    {"stage.l0_handler", "L0: dispatch, inject, nested state machine"},
    {"stage.switch_l0_l1", "switch L0<->L1 (or SVt stall/resume)"},
    {"stage.channel", "SW SVt command rings + mwait wakes"},
    {"stage.l1_handler", "L1 handler (incl. its own traps to L0)"},
};

} // namespace

int
main()
{
    std::printf("One nested cpuid, dissected (Algorithm 1 of the "
                "paper):\n\n");

    Table t({"Stage", "Baseline (us)", "SW SVt (us)", "HW SVt (us)"});
    double totals[3] = {};
    std::vector<std::vector<double>> cells(
        std::size(stages), std::vector<double>(3, 0.0));

    int col = 0;
    for (VirtMode mode :
         {VirtMode::Nested, VirtMode::SwSvt, VirtMode::HwSvt}) {
        NestedSystem sys(mode);
        sys.api().cpuid(1); // warm up
        sys.machine().resetAttribution();
        sys.api().cpuid(1);
        for (std::size_t i = 0; i < std::size(stages); ++i) {
            double us =
                toUsec(sys.machine().scopeTotal(stages[i].scope));
            cells[i][static_cast<std::size_t>(col)] = us;
            totals[col] += us;
        }
        ++col;
    }

    for (std::size_t i = 0; i < std::size(stages); ++i) {
        t.addRow({stages[i].what, Table::num(cells[i][0], 2),
                  Table::num(cells[i][1], 2),
                  Table::num(cells[i][2], 2)});
    }
    t.addRow({"TOTAL", Table::num(totals[0], 2),
              Table::num(totals[1], 2), Table::num(totals[2], 2)});
    std::printf("%s\n", t.render().c_str());

    std::printf("Reading the table:\n"
                " - SW SVt deletes the L0<->L1 context switch and the "
                "vmread-grade register injection, paying a pair of\n"
                "   mwait-channel wakes instead (Section 5.2).\n"
                " - HW SVt turns every switch into a ~20 ns thread "
                "stall/resume and reaches L2's registers with\n"
                "   ctxtld/ctxtst, shrinking the L0 handler and the "
                "L1 handler's folded trap as well (Section 4).\n"
                " - The VMCS transforms remain in all variants: SVt "
                "accelerates context switches, not the nested state\n"
                "   bookkeeping itself (Section 3).\n");
    return 0;
}
