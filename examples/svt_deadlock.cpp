/**
 * @file
 * The Section 5.3 interrupt deadlock, demonstrated: a kernel thread
 * in L1 preempts the SVt-thread and IPIs the L1 vCPU while L0 is
 * waiting for CMD_VM_RESUME. Without the SVT_BLOCKED mechanism the
 * system deadlocks; with it, the L1 vCPU drains the IPI and the
 * SVt-thread finishes.
 *
 *   $ ./build/examples/svt_deadlock
 */

#include <cstdio>

#include "system/nested_system.h"

using namespace svtsim;

namespace {

void
attempt(bool fix_enabled)
{
    StackConfig cfg;
    cfg.svtBlockedFix = fix_enabled;
    NestedSystem sys(VirtMode::SwSvt, cfg);
    GuestApi &api = sys.api();

    api.cpuid(1); // warm up
    sys.stack().armSvtThreadPreemption(usec(30));

    std::printf("  SVT_BLOCKED fix %s: ",
                fix_enabled ? "enabled " : "disabled");
    try {
        Ticks t0 = sys.machine().now();
        api.cpuid(1);
        std::printf("trap completed in %.2f us "
                    "(%llu SVT_BLOCKED injections)\n",
                    toUsec(sys.machine().now() - t0),
                    static_cast<unsigned long long>(
                        sys.machine().counter("swsvt.svt_blocked")));
    } catch (const DeadlockError &e) {
        std::printf("DEADLOCK\n    %s\n", e.what());
    }
}

} // namespace

int
main()
{
    std::printf("SW SVt interrupt deadlock (paper Section 5.3)\n\n");
    std::printf("Scenario: while the SVt-thread handles a CMD_VM_TRAP,"
                " a kernel thread preempts it and IPIs the L1 vCPU,\n"
                "spinning for the ack. L0 is waiting for "
                "CMD_VM_RESUME and never runs the L1 vCPU...\n\n");
    attempt(false);
    attempt(true);
    std::printf("\nThe fix: while waiting, L0 watches for interrupts "
                "to the L1 vCPU and injects a synthetic SVT_BLOCKED\n"
                "trap so the vCPU enables interrupts, handles the IPI "
                "and yields straight back (forward progress without\n"
                "touching the L2 state the SVt-thread is using).\n");
    return 0;
}
