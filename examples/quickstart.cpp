/**
 * @file
 * Quickstart: build a nested virtualization stack in each mode, run a
 * small guest program, and watch the trap costs change.
 *
 *   $ ./build/examples/quickstart
 *
 * The guest program is ordinary C++ against GuestApi; it runs
 * unmodified on bare metal, single-level, nested baseline, and both
 * SVt variants (the paper's transparency requirement).
 */

#include <cstdio>

#include "system/nested_system.h"

using namespace svtsim;

namespace {

/** A tiny guest: identify the CPU, poke an MSR, do some work. */
void
guestProgram(GuestApi &api)
{
    CpuidResult id = api.cpuid(0);
    CpuidResult features = api.cpuid(1);
    api.wrmsr(msr::ia32KernelGsBase, 0xffff888000000000ULL);
    api.compute(usec(25));
    std::uint64_t gs = api.rdmsr(msr::ia32KernelGsBase);

    std::printf("    level %d: cpuid.0 eax=%#llx  hypervisor=%s  "
                "vmx=%s  gsbase=%#llx\n",
                api.level(),
                static_cast<unsigned long long>(id.eax),
                (features.ecx & cpuid_feature::hypervisorPresent)
                    ? "yes"
                    : "no",
                (features.ecx & cpuid_feature::vmx) ? "yes" : "no",
                static_cast<unsigned long long>(gs));
}

} // namespace

int
main()
{
    std::printf("svtsim quickstart: one guest program, five ways to "
                "run it\n\n");
    for (VirtMode mode :
         {VirtMode::Native, VirtMode::Single, VirtMode::Nested,
          VirtMode::SwSvt, VirtMode::HwSvt}) {
        NestedSystem sys(mode);
        Ticks t0 = sys.machine().now();
        sys.stack().run(guestProgram);
        Ticks elapsed = sys.machine().now() - t0;
        std::printf("  %-16s %8.2f us simulated, %llu VM exits\n\n",
                    virtModeName(mode), toUsec(elapsed),
                    static_cast<unsigned long long>(
                        sys.machine().counter("vmx.exit")));
    }
    std::printf("Same architectural results everywhere; only the "
                "virtualization overhead differs.\n");
    return 0;
}
