/**
 * @file
 * Nested I/O walkthrough: a guest in a nested VM talks to its
 * virtio-net and virtio-blk devices; the example prints where the
 * exits go and how SVt shortens the path.
 *
 *   $ ./build/examples/nested_io
 */

#include <cstdio>

#include "io/ramdisk.h"
#include "io/virtio_blk.h"
#include "io/net_fabric.h"
#include "io/virtio_net.h"
#include "system/nested_system.h"
#include "workloads/guest_os.h"

using namespace svtsim;

namespace {

void
runOnce(VirtMode mode)
{
    NestedSystem sys(mode);
    Machine &machine = sys.machine();

    // Wire the paper's device stack: virtio-net over a 10 GbE link
    // with an echo peer, and a virtio disk on a ramdisk.
    NetFabric fabric(machine, machine.costs().wireLatency,
                     machine.costs().linkBitsPerSec);
    VirtioNetStack net(sys.stack(), fabric);
    fabric.setPeerHandler([&](NetPacket pkt) {
        machine.events().scheduleIn(
            machine.costs().remotePeerTurnaround,
            [&fabric, pkt] { fabric.sendToLocal(pkt); });
    });
    RamDisk disk(machine, "ramdisk");
    VirtioBlkStack blk(sys.stack(), disk);

    GuestApi &api = sys.api();

    // One network round trip.
    bool got = false;
    net.setRxHandler([&](NetPacket) { got = true; });
    Ticks t0 = machine.now();
    net.send(64, 1);
    GuestOs::idleWait(api, [&] { return got; });
    Ticks rtt = machine.now() - t0;

    // One disk read.
    bool done = false;
    blk.setCompletionHandler([&](std::uint64_t) { done = true; });
    t0 = machine.now();
    blk.submit(1, 0, 4096, false);
    GuestOs::idleWait(api, [&] { return done; });
    Ticks disk_lat = machine.now() - t0;

    std::printf("  %-16s net RTT %7.1f us   disk read %7.1f us   "
                "exits: %llu total, %llu reflected to L1\n",
                virtModeName(mode), toUsec(rtt), toUsec(disk_lat),
                static_cast<unsigned long long>(
                    machine.counter("vmx.exit")),
                static_cast<unsigned long long>(
                    machine.counter("l0.reflect")));
}

} // namespace

int
main()
{
    std::printf("Nested virtio I/O: every doorbell and interrupt "
                "walks the L2->L0->L1->L0->L2 trap path\n\n");
    for (VirtMode mode :
         {VirtMode::Nested, VirtMode::SwSvt, VirtMode::HwSvt})
        runOnce(mode);
    std::printf("\nSW SVt moves the L0<->L1 half of each round onto "
                "the SMT sibling; HW SVt turns every switch into a\n"
                "thread stall/resume, which is where the factor-2 "
                "latency win of Figure 7 comes from.\n");
    return 0;
}
